// Command reproduce regenerates every table and figure of the paper into an
// output directory: gnuplot-ready .dat files per figure panel, text tables,
// ASCII previews, and a summary comparing each qualitative result against
// the paper's published tables.
//
// Usage:
//
//	reproduce [-out results] [-seed 1] [-scale 0.3] [-full] [-quick]
//	          [-j N] [-cache dir] [-trace file] [-metrics]
//	          [-http addr] [-progress]
//	          [-cpuprofile file] [-memprofile file]
//
// -j sets the pipeline's worker budget (0 = all cores, 1 = sequential);
// output files are byte-identical at every width. -cache names an on-disk
// result cache: a re-run with an unchanged configuration restores every
// suite result from it and performs zero network builds and zero suite
// runs, while a changed seed or scale invalidates only the affected
// entries.
//
// -trace exports the run's span tree as Chrome trace-event JSON (open it at
// ui.perfetto.dev) and prints it as an indented tree; -metrics prints the
// final metrics registry. -cpuprofile/-memprofile write pprof profiles of
// the whole run.
//
// -http addr serves the live observability plane while the run executes:
// /metrics (Prometheus text exposition with histogram buckets),
// /debug/progress (JSON stage DAG with completion fractions and ETA),
// /debug/trace (live span-tree snapshot; ?format=chrome for trace-event
// JSON) and /debug/pprof/*. Port 0 picks a free port; the chosen address
// is printed on startup. -progress renders a live one-line progress
// summary on stderr.
//
// -metrics or -http also run the background time-series sampler (one
// registry + heap/RSS/GC snapshot per 250ms into a bounded ring) and
// write <out>/run_timeseries.json plus <out>/run.json, the run manifest.
// With every observability flag off the output directory is byte-identical
// to an instrumented run — observability never changes results.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"topocmp/internal/cache"
	"topocmp/internal/core"
	"topocmp/internal/experiments"
	"topocmp/internal/hierarchy"
	"topocmp/internal/obs"
	"topocmp/internal/plot"
	"topocmp/internal/stats"
)

func main() {
	out := flag.String("out", "results", "output directory")
	seed := flag.Int64("seed", 1, "experiment seed")
	scale := flag.String("scale", "", "network scale override: a multiplier > 0, "+
		"or a preset (\"full-rl\" = the real RL map's 170k nodes, \"1m\" = million-node generators); "+
		"empty = per-mode default")
	full := flag.Bool("full", false, "paper-scale run (tens of minutes)")
	quick := flag.Bool("quick", false, "CI-scale run (a few minutes)")
	workers := flag.Int("j", 0, "pipeline worker budget (0 = all cores, 1 = sequential)")
	cacheDir := flag.String("cache", "", "result cache directory (empty = no caching)")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	metrics := flag.Bool("metrics", false, "print the final metrics table and write <out>/run.json")
	httpAddr := flag.String("http", "", "serve /metrics, /debug/progress, /debug/trace and /debug/pprof/ "+
		"on this address while the run executes (e.g. 127.0.0.1:6060; port 0 picks a free port)")
	progressLine := flag.Bool("progress", false, "render a live one-line progress summary on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	linkSigma := flag.String("linksigma", "auto", "link-value traversal kernel: "+
		"\"auto\" (diameter probe), \"scalar\" (one BFS per source), \"batched\" "+
		"(force the sigma MSBFS kernel); outputs are byte-identical across modes")
	flag.Parse()

	if *quick && *full {
		fmt.Fprintln(os.Stderr, "reproduce: -quick and -full are mutually exclusive; pick one")
		os.Exit(2)
	}
	cfg := experiments.Config{
		Set:   core.PaperSetOptions{Seed: *seed, Scale: 0.25},
		Suite: core.SuiteOptions{Sources: 16, MaxBallSize: 2000, EigenRank: 40, LinkSources: 448, Seed: *seed},
	}
	if *quick {
		cfg = experiments.QuickConfig(*seed)
	}
	if *full {
		cfg = experiments.FullConfig(*seed)
	}
	if *scale != "" {
		s, err := parseScale(*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(2)
		}
		cfg.Set.Scale = s
	}
	cfg.Suite.Parallelism = *workers
	switch *linkSigma {
	case "auto":
		cfg.Suite.LinkSigma = hierarchy.SigmaAuto
	case "scalar":
		cfg.Suite.LinkSigma = hierarchy.SigmaScalar
	case "batched":
		cfg.Suite.LinkSigma = hierarchy.SigmaBatched
	default:
		fmt.Fprintf(os.Stderr, "reproduce: unknown -linksigma %q (want auto, scalar or batched)\n", *linkSigma)
		os.Exit(2)
	}
	os.Exit(realMain(cfg, *workers, *cacheDir, *out,
		obsOptions{
			Trace:    *traceFile != "",
			Metrics:  *metrics,
			Progress: *progressLine,
			HTTPAddr: *httpAddr,
			Sample:   *metrics || *httpAddr != "",
		},
		*traceFile, *cpuprofile, *memprofile))
}

// maxScale bounds the accepted -scale multiplier. The largest useful preset
// ("1m") is 100; anything far beyond it indicates a typo (a stray exponent
// would otherwise attempt a build with quadrillions of nodes).
const maxScale = 1000

// parseScale resolves a -scale argument: a named preset from
// core.ScalePresets or a positive finite multiplier within sanity bounds.
func parseScale(arg string) (float64, error) {
	if s, ok := core.ScalePresets[arg]; ok {
		return s, nil
	}
	s, err := strconv.ParseFloat(arg, 64)
	if err != nil {
		names := make([]string, 0, len(core.ScalePresets))
		for name := range core.ScalePresets {
			names = append(names, name)
		}
		sort.Strings(names)
		return 0, fmt.Errorf("invalid -scale %q: want a number > 0 or a preset (%s)",
			arg, strings.Join(names, ", "))
	}
	if math.IsNaN(s) || math.IsInf(s, 0) || s <= 0 {
		return 0, fmt.Errorf("invalid -scale %v: must be a finite value > 0", s)
	}
	if s > maxScale {
		return 0, fmt.Errorf("invalid -scale %v: exceeds the sanity bound %d "+
			"(the largest preset, 1m, is 100)", s, maxScale)
	}
	return s, nil
}

// realMain wraps run with the profiling and trace-export plumbing; it
// returns the process exit code so deferred profile writers always run.
func realMain(cfg experiments.Config, workers int, cacheDir, out string,
	o obsOptions, traceFile, cpuprofile, memprofile string) int {

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		return 1
	}
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	_, tr, err := run(cfg, workers, cacheDir, out, o)
	if err != nil {
		return fail(err)
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return fail(err)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}
	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fail(err)
		}
	}
	return 0
}

// obsOptions selects the run's observability outputs. The zero value — the
// default — changes nothing observable: stage banners and the final pipeline
// line are rendered from the same span tree and metrics registry either way,
// and the output directory stays byte-identical (run.json and
// run_timeseries.json only appear when an option is on).
type obsOptions struct {
	Trace    bool   // render the span tree to stdout (main also exports Chrome JSON)
	Metrics  bool   // print the metrics table to stdout
	Progress bool   // render a live one-line progress summary on stderr
	HTTPAddr string // serve the live debug endpoints on this address ("" = off)
	Sample   bool   // run the time-series sampler; writes <out>/run_timeseries.json
}

// run renders every artifact into out and returns the runner (for its
// pipeline statistics) and the tracer holding the run's span tree. Stage
// banners, timings and cache counters go to stdout only — the files under
// out are byte-identical across worker widths, cache states and observability
// options (run.json exists only when an obsOption is on).
func run(cfg experiments.Config, workers int, cacheDir, out string, o obsOptions) (*experiments.Runner, *obs.Tracer, error) {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return nil, nil, err
	}
	r := experiments.NewRunner(cfg)
	r.Workers = workers
	if cacheDir != "" {
		store, err := cache.Open(cacheDir)
		if err != nil {
			return nil, nil, err
		}
		store.Instrument(r.Metrics())
		r.Cache = store
	}
	r.Metrics().Gauge("pipeline.workers").Set(int64(workers))

	// The span tree is always collected (it is cheap — one span per stage
	// plus a handful per computed network) and is the single source of the
	// stage banners, the timing lines, the final total, and — when enabled —
	// the stdout tree, the Chrome export and the manifest stage list.
	tr := obs.NewTracer("reproduce")
	root := tr.Root()
	tr.OnStart = func(s *obs.Span) {
		if s.Depth() == 1 {
			fmt.Printf("== %s ==\n", s.Name())
		}
	}
	tr.OnEnd = func(s *obs.Span) {
		if s.Depth() == 1 {
			fmt.Printf("   %-28s %8.1fs\n", s.Name(), s.Duration().Seconds())
		}
	}
	// The figure renderers group networks three ways; several stages share it.
	groups := []struct {
		key   string
		names []string
	}{
		{"canonical", experiments.CanonicalNames},
		{"measured", experiments.MeasuredNames},
		{"generated", experiments.GeneratedNames},
	}

	// Every artifact stage, declared up front in display order. Declaring
	// the table (rather than running each call site inline) lets the
	// progress DAG register every stage before the first one runs, so
	// /debug/progress shows the whole pipeline — pending, running, cached,
	// done — from the first request.
	prog := obs.NewProgress()
	r.Progress = prog
	stages := []struct {
		title string
		f     func(sp *obs.Span) error
	}{

		{"Pipeline: networks and suites", func(sp *obs.Span) error {
			r.Trace = sp
			r.Prefetch()
			return nil
		}},

		{"Table 1: network inventory", func(sp *obs.Span) error {
			return writeTable1(r, out)
		}},

		{"Figure 2: expansion/resilience/distortion", func(sp *obs.Span) error {
			for _, g := range groups {
				p := r.Figure2(g.key, g.names)
				if err := writePanel(out, "fig2_"+g.key, p.Expansion, p.Resilience, p.Distortion); err != nil {
					return err
				}
				preview(p.Expansion, "expansion "+g.key, plot.Options{YScale: plot.Log})
			}
			return nil
		}},
		{"Figure 2 (degree-based variants, j-l)", func(sp *obs.Span) error {
			vp := r.Figure12()
			if err := writePanel(out, "fig2_variants", vp.Expansion, vp.Resilience, vp.Distortion); err != nil {
				return err
			}
			_, err := plot.WriteDat(out, "fig12_ccdf", vp.CCDF)
			return err
		}},

		{"Tables 2 and 3: signatures", func(sp *obs.Span) error {
			if err := writeRows(filepath.Join(out, "table2_canonical.txt"), r.Table2()); err != nil {
				return err
			}
			rows := r.Table3()
			if err := writeRows(filepath.Join(out, "table3_classification.txt"), rows); err != nil {
				return err
			}
			return core.WriteTable(os.Stdout, rows)
		}},

		{"Figures 3/4: link value distributions", func(sp *obs.Span) error {
			lv := r.Figure3([]string{"Tree", "Mesh", "Random", "RL", "AS", "TS", "Tiers", "Waxman", "PLRG"})
			_, err := plot.WriteDat(out, "fig3_linkvalues", lv)
			return err
		}},

		{"Table 4: hierarchy groups", func(sp *obs.Span) error {
			return writeTable4(r, out)
		}},

		{"Figure 5: link value / degree correlation", func(sp *obs.Span) error {
			return writeFigure5(r, out)
		}},

		{"Figure 6: degree distributions", func(sp *obs.Span) error {
			for _, g := range groups {
				if _, err := plot.WriteDat(out, "fig6_"+g.key, r.Figure6(g.names)); err != nil {
					return err
				}
			}
			return nil
		}},

		{"Figure 7: eigenvalues and eccentricity", func(sp *obs.Span) error {
			for _, g := range groups {
				names := g.names
				if g.key == "measured" {
					names = append([]string{"PLRG"}, names...)
				}
				if _, err := plot.WriteDat(out, "fig7_eigen_"+g.key, r.Figure7Eigen(names)); err != nil {
					return err
				}
				if _, err := plot.WriteDat(out, "fig7_ecc_"+g.key, r.Figure7Ecc(names)); err != nil {
					return err
				}
			}
			return nil
		}},

		{"Figure 8: vertex cover and biconnectivity", func(sp *obs.Span) error {
			for _, g := range groups {
				if _, err := plot.WriteDat(out, "fig8_cover_"+g.key, r.Figure8Cover(g.names)); err != nil {
					return err
				}
				if _, err := plot.WriteDat(out, "fig8_bicon_"+g.key, r.Figure8Bicon(g.names)); err != nil {
					return err
				}
			}
			return nil
		}},

		{"Figure 9: attack and error tolerance", func(sp *obs.Span) error {
			for _, g := range groups {
				att, errTol := r.Figure9(g.names)
				if _, err := plot.WriteDat(out, "fig9_attack_"+g.key, att); err != nil {
					return err
				}
				if _, err := plot.WriteDat(out, "fig9_error_"+g.key, errTol); err != nil {
					return err
				}
			}
			return nil
		}},

		{"Figure 10: clustering", func(sp *obs.Span) error {
			for _, g := range groups {
				if _, err := plot.WriteDat(out, "fig10_"+g.key, r.Figure10(g.names)); err != nil {
					return err
				}
			}
			return nil
		}},

		{"Figure 11: parameter space", func(sp *obs.Span) error {
			return writeFigure11(r, out)
		}},

		{"Figure 13: PLRG reconnection", func(sp *obs.Span) error {
			rp := r.Figure13()
			return writePanel(out, "fig13", rp.Expansion, rp.Resilience, rp.Distortion)
		}},

		{"Figure 14: variant link values", func(sp *obs.Span) error {
			_, err := plot.WriteDat(out, "fig14_linkvalues", r.Figure14())
			return err
		}},

		{"Appendix D.1: connectivity methods", func(sp *obs.Span) error {
			cp := r.ConnectivityVariants()
			return writePanel(out, "appD_connectivity", cp.Expansion, cp.Resilience, cp.Distortion)
		}},

		{"Null model: degree-preserving rewiring", func(sp *obs.Span) error {
			rwp := r.RewiringPanel()
			return writePanel(out, "nullmodel_rewire", rwp.Expansion, rwp.Resilience, rwp.Distortion)
		}},

		{"Extras (beyond the paper)", func(sp *obs.Span) error {
			return writeExtras(r.Extras(), out)
		}},

		{"Summary vs. paper", func(sp *obs.Span) error {
			return writeSummary(r, out)
		}},
	}
	for _, sd := range stages {
		prog.Register(sd.title)
	}

	// The live plane starts before the first stage so a mid-run scrape sees
	// the real state of the pipeline, and stops (idempotently, including the
	// error paths) once the last stage ends.
	if o.HTTPAddr != "" {
		ds, err := obs.StartDebugServer(o.HTTPAddr, r.Metrics(), prog, tr)
		if err != nil {
			return r, tr, err
		}
		defer ds.Close()
		fmt.Printf("debug server listening on http://%s (/metrics /debug/progress /debug/trace /debug/pprof/)\n", ds.Addr())
	}
	var smp *obs.Sampler
	stopSampler := func() {}
	if o.Sample {
		smp = obs.NewSampler(r.Metrics(), 0, 0)
		smp.Start()
		var once sync.Once
		stopSampler = func() { once.Do(smp.Stop) }
		defer stopSampler()
	}
	stopTTY := func() {}
	if o.Progress {
		stop := startProgressLine(prog, os.Stderr)
		var once sync.Once
		stopTTY = func() { once.Do(stop) }
		defer stopTTY()
	}

	for _, sd := range stages {
		st := prog.Register(sd.title)
		st.Run()
		sp := root.Start(sd.title)
		err := sd.f(sp)
		sp.End()
		// Post-stage heap/RSS gauges: with -metrics on, the registry table
		// becomes a per-stage memory trajectory of the run. A no-op (nil
		// registry internals aside, gauges never alter results or outputs).
		r.Metrics().CaptureMem("mem." + stageSlug(sd.title))
		if err != nil {
			return r, tr, err
		}
		st.Done()
	}
	stopTTY()

	root.End()
	st := r.Stats()
	fmt.Printf("pipeline: %d network builds, %d suite runs", st.NetworkBuilds, st.SuiteRuns)
	if r.Cache != nil {
		fmt.Printf(", cache %d hits / %d misses / %d writes", st.CacheHits, st.CacheMisses, st.CachePuts)
		if st.CacheDecodeErrors > 0 {
			fmt.Printf(" (%d corrupt entries evicted)", st.CacheDecodeErrors)
		}
	}
	fmt.Printf(", total %.1fs\n", root.Duration().Seconds())

	if o.Metrics {
		fmt.Println("-- metrics --")
		r.Metrics().Snapshot().WriteTable(os.Stdout)
	}
	if o.Trace {
		fmt.Println("-- trace --")
		tr.WriteTree(os.Stdout) //nolint:errcheck // stdout rendering is best-effort
	}
	if smp != nil {
		stopSampler() // records the final sample before the ring is exported
		if err := smp.WriteFile(filepath.Join(out, "run_timeseries.json")); err != nil {
			return r, tr, err
		}
	}
	if o.Metrics || o.Trace || o.Sample {
		man := &obs.Manifest{
			Tool:               "reproduce",
			GoVersion:          runtime.Version(),
			CacheSchemaVersion: cache.SchemaVersion,
			Seed:               cfg.Suite.Seed,
			Workers:            workers,
			CacheDir:           cacheDir,
			Config:             cfg,
			Stages:             obs.StageTimings(root),
			TotalSeconds:       root.Duration().Seconds(),
			Metrics:            r.Metrics().Snapshot(),
		}
		if err := man.Write(filepath.Join(out, "run.json")); err != nil {
			return r, tr, err
		}
	}
	return r, tr, nil
}

// writeExtras renders the beyond-the-paper artifacts: footnote 22's two
// metrics, hop plots, small-world coefficients, Weibull tail fits of the
// degree CCDFs, the AS size/degree coupling and the BGP vantage-coverage
// curve.
func writeExtras(e experiments.ExtrasData, out string) error {
	if _, err := plot.WriteDat(out, "extra_ballpathlen", e.PathLength); err != nil {
		return err
	}
	if _, err := plot.WriteDat(out, "extra_surfaceflow", e.MaxFlow); err != nil {
		return err
	}
	if _, err := plot.WriteDat(out, "extra_hopplot", e.Hop); err != nil {
		return err
	}

	f, err := os.Create(filepath.Join(out, "extras.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Network\tSmallWorldSigma\tClustering\tAPL\tWeibullK\tWeibullR2")
	for _, row := range e.Rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.3f\t%.2f\t%.2f\t%.2f\n",
			row.Name, row.Sigma, row.Clustering, row.PathLength, row.WeibullK, row.WeibullR2)
	}
	fmt.Fprintf(tw, "\nAS size/degree correlation (Tangmunarunkit et al. 2001): %.3f\n",
		e.SizeDegreeCorrelation)
	cov := e.Coverage
	fmt.Fprintf(tw, "BGP coverage: 1 vantage %.2f -> %d vantages %.2f (Chang et al. 2002)\n",
		cov.Points[0].Y, cov.Len(), cov.Points[cov.Len()-1].Y)
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// stageSlug compresses a stage banner title into a metric-name segment:
// lowercase alphanumerics with runs of everything else collapsed to one
// underscore ("Figure 2: expansion/..." -> "figure_2_expansion_...").
func stageSlug(title string) string {
	var b strings.Builder
	pendingSep := false
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			if pendingSep && b.Len() > 0 {
				b.WriteByte('_')
			}
			pendingSep = false
			b.WriteRune(r)
		default:
			pendingSep = true
		}
	}
	return b.String()
}

// startProgressLine launches a goroutine repainting one status line on w
// (an ANSI terminal — \r plus erase-to-end) every 200ms and returns a stop
// function that erases the line and waits for the goroutine to exit.
func startProgressLine(p *obs.Progress, w io.Writer) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(200 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintf(w, "\r\x1b[K%s", progressLine(p.Snapshot()))
			case <-stop:
				fmt.Fprint(w, "\r\x1b[K")
				return
			}
		}
	}()
	return func() { close(stop); <-done }
}

// progressLine renders one snapshot as a single status line: overall
// percentage, stage tally, the currently running stage (with its work
// counter when the stage reports units) and the ETA.
func progressLine(s obs.ProgressSnapshot) string {
	finished := 0
	var running *obs.StageStatus
	for i := range s.Stages {
		switch s.Stages[i].State {
		case obs.StageDone, obs.StageCached:
			finished++
		case obs.StageRunning:
			running = &s.Stages[i]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%3.0f%% | %d/%d stages", 100*s.Fraction, finished, len(s.Stages))
	if running != nil {
		fmt.Fprintf(&b, " | %s", running.Name)
		if running.TotalUnits > 0 {
			fmt.Fprintf(&b, " %d/%d", running.DoneUnits, running.TotalUnits)
		}
	}
	if s.ETASeconds > 0 {
		fmt.Fprintf(&b, " | eta %ds", int(s.ETASeconds+0.5))
	}
	return b.String()
}

func writePanel(out, prefix string, exp, res, dist []stats.Series) error {
	if _, err := plot.WriteDat(out, prefix+"_expansion", exp); err != nil {
		return err
	}
	if _, err := plot.WriteDat(out, prefix+"_resilience", res); err != nil {
		return err
	}
	_, err := plot.WriteDat(out, prefix+"_distortion", dist)
	return err
}

func preview(series []stats.Series, title string, opts plot.Options) {
	opts.Title = title
	plot.ASCII(os.Stdout, series, opts)
}

func writeTable1(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "table1_inventory.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Type\tTopology\tNodes\tEdges\tAvgDegree\tMaxDegree")
	for _, d := range r.Table1() {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.2f\t%d\n",
			d.Category, d.Name, d.Nodes, d.Edges, d.AvgDegree, d.MaxDegree)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeRows(path string, rows []core.Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := core.WriteTable(f, rows); err != nil {
		return err
	}
	return f.Close()
}

func writeTable4(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "table4_hierarchy.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Topology\tHierarchy\tExpected")
	for _, row := range r.Table4() {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", row.Name, row.Class, core.ExpectedHierarchy[row.Name])
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeFigure5(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "fig5_correlation.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Topology\tCorrelation")
	for _, row := range r.Figure5() {
		fmt.Fprintf(tw, "%s\t%.3f\n", row.Name, row.Correlation)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeFigure11(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "fig11_parameters.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Generator\tParams\tNodes\tAvgDegree\tSignature")
	for _, row := range r.Figure11() {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%s\n",
			row.Generator, row.Params, row.Nodes, row.AvgDegree, row.Signature)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeSummary(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "summary.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Check\tExpected\tGot\tMatch")
	matches, total := 0, 0
	for _, c := range r.Summary() {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%v\n", c.Name, c.Expected, c.Got, c.Match)
		total++
		if c.Match {
			matches++
		}
	}
	fmt.Fprintf(tw, "TOTAL\t\t\t%d/%d\n", matches, total)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("summary: %d/%d checks match the paper\n", matches, total)
	return f.Close()
}
