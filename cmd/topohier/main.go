// Command topohier computes the paper's hierarchy measure — link values and
// their rank distribution (§5) — on a graph read from an edge-list file,
// prints the strict/moderate/loose classification, the correlation with
// endpoint degree (Figure 5), and the highest-value "backbone" links.
//
// Usage:
//
//	topogen -type plrg -n 2000 -o g.edges
//	topohier -sources 512 g.edges
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"topocmp/internal/graph"
	"topocmp/internal/hierarchy"
	"topocmp/internal/plot"
	"topocmp/internal/stats"
)

func main() {
	var (
		sources = flag.Int("sources", 448, "pair-universe sample size (0 = all nodes)")
		seed    = flag.Int64("seed", 1, "RNG seed")
		useCore = flag.Bool("core", false, "reduce to the graph core (recursive degree-1 removal) first, as the paper does for the RL graph")
		top     = flag.Int("top", 10, "how many backbone links to list")
		datDir  = flag.String("dat", "", "write the rank distribution as a .dat file into this directory")
	)
	flag.Parse()

	g, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "topohier:", err)
		os.Exit(1)
	}
	if *useCore {
		var orig []int32
		g, orig = g.Core()
		fmt.Printf("core reduction: %d nodes remain\n", len(orig))
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	res := hierarchy.LinkValues(g, hierarchy.Options{
		MaxSources: *sources,
		Rand:       rand.New(rand.NewSource(*seed)),
	})
	fmt.Printf("hierarchy class: %s\n", hierarchy.Classify(res))
	fmt.Printf("link value / min-degree correlation: %.3f\n", res.DegreeCorrelation(g))

	type lv struct {
		e graph.Edge
		v float64
	}
	ranked := make([]lv, len(res.Edges))
	norm := res.Normalized()
	for i := range ranked {
		ranked[i] = lv{res.Edges[i], norm[i]}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].v > ranked[j].v })
	n := *top
	if n > len(ranked) {
		n = len(ranked)
	}
	fmt.Printf("top %d backbone links (normalized value, endpoint degrees):\n", n)
	for _, r := range ranked[:n] {
		fmt.Printf("  (%d,%d)\t%.4f\tdeg %d/%d\n",
			r.e.U, r.e.V, r.v, g.Degree(r.e.U), g.Degree(r.e.V))
	}

	dist := res.RankDistribution()
	plot.ASCII(os.Stdout, []stats.Series{dist}, plot.Options{
		Title: "link value rank distribution", XScale: plot.Log, Height: 10,
	})
	if *datDir != "" {
		if _, err := plot.WriteDat(*datDir, "linkvalues", []stats.Series{dist}); err != nil {
			fmt.Fprintln(os.Stderr, "topohier:", err)
			os.Exit(1)
		}
	}
}

func load(path string) (*graph.Graph, error) {
	if path == "" || path == "-" {
		return graph.ReadEdgeList(os.Stdin)
	}
	return graph.ReadEdgeListFile(path)
}
