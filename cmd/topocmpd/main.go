// Command topocmpd is the long-running topology-metrics daemon: it serves
// generator+metric queries (POST /v1/suite, POST /v1/metric) over the same
// option vocabulary the reproduce CLI runs, with singleflight dedup,
// cross-request sweep coalescing and bounded admission (internal/serve),
// and mounts the live observability plane (/metrics, /debug/progress,
// /debug/trace, /debug/pprof/) on the same listener.
//
//	topocmpd -addr 127.0.0.1:8080 -cache .cache -j 8
//
// SIGTERM/SIGINT drain gracefully: the listener closes, in-flight requests
// get -drain to finish, and the time-series sampler (when -timeseries is
// set) flushes its ring to disk.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"topocmp/internal/cache"
	"topocmp/internal/obs"
	"topocmp/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	workers := flag.Int("j", 0, "worker budget shared by all computations (0 = all cores)")
	cacheDir := flag.String("cache", "", "content-addressed result cache directory, shared with "+
		"reproduce runs (empty = memory-only)")
	maxInFlight := flag.Int("max-inflight", 2, "max concurrently computing suites; excess "+
		"non-dedupable requests are shed with 429")
	window := flag.Duration("window", 2*time.Millisecond, "sweep-coalescing admission window "+
		"(0 disables coalescing)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	timeseries := flag.String("timeseries", "", "sample /metrics counters periodically and write "+
		"the ring to this file on shutdown (empty = off)")
	trace := flag.Bool("trace", false, "record one span per computed request under /debug/trace "+
		"(the tree grows with traffic; debugging aid)")
	flag.Parse()

	opts := serve.Options{
		Workers:     *workers,
		MaxInFlight: *maxInFlight,
		Deadline:    *deadline,
	}
	if *window == 0 {
		opts.Window = -1 // Options treats 0 as "default"; negative disables
	} else {
		opts.Window = *window
	}
	if *cacheDir != "" {
		store, err := cache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topocmpd: %v\n", err)
			os.Exit(1)
		}
		opts.Cache = store
	}
	if *trace {
		opts.Tracer = obs.NewTracer("topocmpd")
	}
	s := serve.New(opts)

	var smp *obs.Sampler
	if *timeseries != "" {
		smp = obs.NewSampler(s.Metrics(), 0, 0)
		smp.Start()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topocmpd: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: s.Handler()}
	// The smoke harness parses this line to find the chosen port.
	fmt.Printf("topocmpd listening on http://%s (/v1/suite /v1/metric /metrics /debug/progress)\n",
		ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("topocmpd: %v, draining (up to %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "topocmpd: drain: %v\n", err)
		}
		cancel()
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "topocmpd: %v\n", err)
			os.Exit(1)
		}
	}
	if smp != nil {
		smp.Stop() // records the final sample before the ring is exported
		if err := smp.WriteFile(*timeseries); err != nil {
			fmt.Fprintf(os.Stderr, "topocmpd: timeseries: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("topocmpd: wrote %s\n", *timeseries)
	}
}
