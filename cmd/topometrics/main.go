// Command topometrics computes the paper's topology metrics on a graph read
// from an edge-list file (or stdin) and prints the curves, optionally as
// .dat files and ASCII plots.
//
// Usage:
//
//	topogen -type plrg -n 5000 -o g.edges
//	topometrics -metric expansion g.edges
//	topometrics -metric all -dat out/ g.edges
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/metrics"
	"topocmp/internal/partition"
	"topocmp/internal/plot"
	"topocmp/internal/stats"
)

func main() {
	var (
		metric  = flag.String("metric", "all", "expansion, resilience, distortion, eigenvalues, eccentricity, cover, biconnectivity, attack, error, clustering, or all")
		sources = flag.Int("sources", 24, "sampled ball centers")
		maxBall = flag.Int("maxball", 3000, "per-ball size cap for expensive metrics")
		seed    = flag.Int64("seed", 1, "RNG seed")
		datDir  = flag.String("dat", "", "also write .dat files into this directory")
		ascii   = flag.Bool("ascii", true, "print ASCII previews")
	)
	flag.Parse()

	g, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "topometrics:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %d nodes, %d edges, avg degree %.2f, max degree %d\n",
		g.NumNodes(), g.NumEdges(), g.AvgDegree(), g.MaxDegree())

	cfg := func(off int64) ball.Config {
		return ball.Config{
			MaxSources:  *sources,
			MaxBallSize: *maxBall,
			Rand:        rand.New(rand.NewSource(*seed + off)),
		}
	}
	fractions := []float64{0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20}

	compute := map[string]func() stats.Series{
		"expansion": func() stats.Series {
			return metrics.Expansion(g, ball.Config{MaxSources: 4 * *sources,
				Rand: rand.New(rand.NewSource(*seed))})
		},
		"resilience": func() stats.Series {
			return metrics.Resilience(g, cfg(1), partition.Options{
				Rand: rand.New(rand.NewSource(*seed + 100))})
		},
		"distortion":   func() stats.Series { return metrics.Distortion(g, cfg(2), 3) },
		"eigenvalues":  func() stats.Series { return metrics.EigenvalueSpectrum(g, 40) },
		"eccentricity": func() stats.Series { return metrics.EccentricityDistribution(g, 4**sources, 0.1) },
		"cover":        func() stats.Series { return metrics.VertexCoverCurve(g, cfg(3)) },
		"biconnectivity": func() stats.Series {
			return metrics.BiconnectivityCurve(g, cfg(4))
		},
		"attack": func() stats.Series { return metrics.AttackTolerance(g, fractions, 2**sources) },
		"error": func() stats.Series {
			return metrics.ErrorTolerance(g, fractions, 2**sources,
				rand.New(rand.NewSource(*seed+200)))
		},
		"clustering": func() stats.Series { return metrics.ClusteringCurve(g, cfg(5)) },
	}
	order := []string{"expansion", "resilience", "distortion", "eigenvalues",
		"eccentricity", "cover", "biconnectivity", "attack", "error", "clustering"}

	var run []string
	if *metric == "all" {
		run = order
	} else if _, ok := compute[*metric]; ok {
		run = []string{*metric}
	} else {
		fmt.Fprintf(os.Stderr, "topometrics: unknown metric %q\n", *metric)
		os.Exit(1)
	}
	for _, name := range run {
		s := compute[name]()
		s.Name = name
		fmt.Printf("\n%s (%d points):\n", name, s.Len())
		for _, p := range s.Points {
			fmt.Printf("  %g\t%g\n", p.X, p.Y)
		}
		if *ascii && s.Len() > 1 {
			opts := plot.Options{Title: name, Height: 10}
			if name == "resilience" || name == "distortion" || name == "cover" || name == "biconnectivity" {
				opts.XScale = plot.Log
			}
			if name == "expansion" || name == "resilience" || name == "cover" || name == "biconnectivity" {
				opts.YScale = plot.Log
			}
			plot.ASCII(os.Stdout, []stats.Series{s}, opts)
		}
		if *datDir != "" {
			if _, err := plot.WriteDat(*datDir, "metric", []stats.Series{s}); err != nil {
				fmt.Fprintln(os.Stderr, "topometrics:", err)
				os.Exit(1)
			}
		}
	}
}

func load(path string) (*graph.Graph, error) {
	if path == "" || path == "-" {
		return graph.ReadEdgeList(os.Stdin)
	}
	return graph.ReadEdgeListFile(path)
}
