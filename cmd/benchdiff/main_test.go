package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: topocmp/internal/partition
cpu: AMD EPYC
BenchmarkKernelCutSize/fresh-8         	       1	   2100000 ns/op	  296240 B/op	     141 allocs/op
BenchmarkKernelCutSize/workspace-8     	       1	   1900000 ns/op	    5376 B/op	       1 allocs/op
BenchmarkScaleBuild/map-16             	       1	 600000000 ns/op
BenchmarkBrandNew/case-8               	       1	   1000000 ns/op	     100 B/op	      10 allocs/op
BenchmarkKernelCutSize/fresh           	--- SKIP: short mode
PASS
ok  	topocmp/internal/partition	0.123s
`

func TestParseBenchOutput(t *testing.T) {
	res, err := parseBenchOutput(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]benchResult{}
	for _, r := range res {
		got[r.Name] = r
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(got), got)
	}
	fresh := got["BenchmarkKernelCutSize/fresh"]
	if fresh.Seconds != 0.0021 || fresh.Allocs != 141 {
		t.Errorf("fresh = %+v, want 0.0021s / 141 allocs", fresh)
	}
	// No B/op / allocs/op columns: Allocs stays at the -1 sentinel.
	if b := got["BenchmarkScaleBuild/map"]; b.Seconds != 0.6 || b.Allocs != -1 {
		t.Errorf("map = %+v, want 0.6s / -1 allocs", b)
	}
}

func TestStripProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":            "BenchmarkX",
		"BenchmarkX/case-16":      "BenchmarkX/case",
		"BenchmarkX/words1-rl-4":  "BenchmarkX/words1-rl",
		"BenchmarkX/no-digits-":   "BenchmarkX/no-digits-",
		"BenchmarkX/mixed-8cores": "BenchmarkX/mixed-8cores",
		"BenchmarkPlain":          "BenchmarkPlain",
	} {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadBaselinesBothTimingFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")
	data := `[
		{"name": "BenchmarkA", "seconds_per_op": 0.002, "allocs_per_op": 141},
		{"name": "BenchmarkB/sub", "seconds": 0.5},
		{"name": "BenchmarkNoTiming", "peak_heap_bytes": 12345},
		{"name": "", "seconds": 1}
	]`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaselines(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 {
		t.Fatalf("loaded %d entries, want 2: %+v", len(base), base)
	}
	if b := base["BenchmarkA"]; b.Seconds != 0.002 || b.Allocs != 141 {
		t.Errorf("BenchmarkA = %+v", b)
	}
	if b := base["BenchmarkB/sub"]; b.Seconds != 0.5 || b.Allocs != -1 {
		t.Errorf("BenchmarkB/sub = %+v", b)
	}
	if _, err := loadBaselines(filepath.Join(dir, "nomatch_*.json")); err == nil {
		t.Error("missing baselines: want error, got nil")
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := map[string]baseline{
		"BenchmarkFast":    {Seconds: 0.001, Allocs: 100},
		"BenchmarkSlow":    {Seconds: 0.001, Allocs: 100},
		"BenchmarkAllocs":  {Seconds: 0.001, Allocs: 100},
		"BenchmarkNoAlloc": {Seconds: 0.5, Allocs: -1},
		"BenchmarkUnrun":   {Seconds: 1, Allocs: -1},
	}
	fresh := map[string]benchResult{
		"BenchmarkFast":    {Name: "BenchmarkFast", Seconds: 0.0012, Allocs: 100},
		"BenchmarkSlow":    {Name: "BenchmarkSlow", Seconds: 0.02, Allocs: 100},    // 20x time
		"BenchmarkAllocs":  {Name: "BenchmarkAllocs", Seconds: 0.001, Allocs: 300}, // 3x allocs
		"BenchmarkNoAlloc": {Name: "BenchmarkNoAlloc", Seconds: 0.6, Allocs: 500},  // no baseline allocs: time only
		"BenchmarkNew":     {Name: "BenchmarkNew", Seconds: 9, Allocs: 9e6},        // no baseline at all
	}
	rep := compare(base, fresh, tolerances{Time: 4, Allocs: 1.5, AllocSlack: 64})

	if len(rep.Compared) != 4 {
		t.Fatalf("compared %d, want 4", len(rep.Compared))
	}
	want := map[string]bool{"BenchmarkSlow": true, "BenchmarkAllocs": true}
	got := map[string]bool{}
	for _, c := range rep.Regressions {
		got[c.Name] = true
	}
	if len(got) != len(want) {
		t.Fatalf("regressions = %v, want %v", got, want)
	}
	for name := range want {
		if !got[name] {
			t.Errorf("missing regression %s", name)
		}
	}
	if len(rep.NoBaseline) != 1 || rep.NoBaseline[0] != "BenchmarkNew" {
		t.Errorf("NoBaseline = %v, want [BenchmarkNew]", rep.NoBaseline)
	}
	if len(rep.NotRun) != 1 || rep.NotRun[0] != "BenchmarkUnrun" {
		t.Errorf("NotRun = %v, want [BenchmarkUnrun]", rep.NotRun)
	}

	var buf bytes.Buffer
	rep.write(&buf)
	out := buf.String()
	if !strings.Contains(out, "REGRESSION BenchmarkSlow") ||
		!strings.Contains(out, "2 regression(s)") {
		t.Errorf("report rendering incomplete:\n%s", out)
	}
}

// TestCompareAgainstCommittedBaselines replays the committed baselines
// against themselves (rendered as bench output) — the sentinel must pass on
// an unchanged tree, whatever the tolerance.
func TestCompareAgainstCommittedBaselines(t *testing.T) {
	base, err := loadBaselines(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("no committed baseline entries")
	}
	fresh := map[string]benchResult{}
	for name, b := range base {
		fresh[name] = benchResult{Name: name, Seconds: b.Seconds, Allocs: b.Allocs}
	}
	rep := compare(base, fresh, tolerances{Time: 1.01, Allocs: 1.01, AllocSlack: 0})
	if len(rep.Regressions) != 0 {
		t.Errorf("self-comparison regressed: %+v", rep.Regressions)
	}
	if len(rep.NoBaseline) != 0 || len(rep.NotRun) != 0 {
		t.Errorf("self-comparison left uncompared entries: %v / %v", rep.NoBaseline, rep.NotRun)
	}
}
