// Command benchdiff is the repository's bench-regression sentinel: it
// compares fresh `go test -bench` output against the committed BENCH_*.json
// baselines and fails when a kernel got slower or allocates more than the
// tolerance allows.
//
// Usage:
//
//	benchdiff [-baseline 'BENCH_*.json'] [-tolerance 4] [-alloc-tolerance 1.5]
//	          [-alloc-slack 64] [bench-output.txt ...]
//
// The positional arguments are files holding standard `go test -bench`
// output (stdin when none are given). -baseline is a comma-separated list
// of baseline files or globs; each file is a JSON array of objects carrying
// at least "name" plus "seconds_per_op" (per-op benchmarks) or "seconds"
// (single-shot scale benchmarks), and optionally "allocs_per_op".
//
// Matching is by benchmark name with the trailing -GOMAXPROCS suffix
// stripped, so "BenchmarkKernelCutSize/fresh-8" compares against the
// baseline entry "BenchmarkKernelCutSize/fresh". Fresh benchmarks without a
// baseline entry and baseline entries not exercised by the given output are
// reported but never fail the run — verify.sh's smoke runs a subset of the
// full suite, and new benchmarks land before their baselines do.
//
// The default time tolerance is deliberately loose (4x) because verify.sh
// benches with -benchtime 1x, where a single iteration carries scheduler
// noise; the sentinel exists to catch order-of-magnitude regressions (an
// accidentally quadratic path, a dropped cache), not 10% drift. Alloc
// counts are near-deterministic, so their tolerance is tighter
// (1.5x + 64 allocs of slack).
//
// Exit status: 0 when every compared benchmark is within tolerance, 1 on
// any regression, 2 on usage or parse errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	baselines := flag.String("baseline", "BENCH_*.json",
		"comma-separated baseline JSON files or globs")
	tolerance := flag.Float64("tolerance", 4,
		"fail when fresh time exceeds baseline by more than this factor")
	allocTolerance := flag.Float64("alloc-tolerance", 1.5,
		"fail when fresh allocs/op exceed baseline by more than this factor (plus -alloc-slack)")
	allocSlack := flag.Float64("alloc-slack", 64,
		"absolute allocs/op headroom added on top of -alloc-tolerance")
	flag.Parse()

	base, err := loadBaselines(*baselines)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := readBenchFiles(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(fresh) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results in input")
		os.Exit(2)
	}

	report := compare(base, fresh, tolerances{
		Time:       *tolerance,
		Allocs:     *allocTolerance,
		AllocSlack: *allocSlack,
	})
	report.write(os.Stdout)
	if len(report.Regressions) > 0 {
		os.Exit(1)
	}
}

// benchResult is one parsed `go test -bench` output line.
type benchResult struct {
	Name    string  // -GOMAXPROCS suffix stripped
	Seconds float64 // per reported op
	Allocs  float64 // allocs/op; -1 when the line carries none
}

// baseline is one committed reference entry.
type baseline struct {
	Seconds float64
	Allocs  float64 // -1 when the entry carries none
}

// tolerances bounds the accepted fresh/baseline ratios.
type tolerances struct {
	Time       float64
	Allocs     float64
	AllocSlack float64
}

// comparison is the verdict for one benchmark present on both sides.
type comparison struct {
	Name          string
	TimeRatio     float64
	AllocRatio    float64 // 0 when either side lacks alloc data
	BaseSeconds   float64
	FreshSeconds  float64
	BaseAllocs    float64
	FreshAllocs   float64
	TimeRegressed bool
	AllocRegessed bool
}

// report aggregates the run's verdicts.
type report struct {
	Compared    []comparison
	Regressions []comparison
	NoBaseline  []string // fresh benchmarks with no committed entry
	NotRun      []string // baseline entries the input did not exercise
}

// loadBaselines reads every file matched by the comma-separated globs into
// one name-keyed map. Missing globs are an error — a sentinel silently
// comparing against nothing would pass forever.
func loadBaselines(globs string) (map[string]baseline, error) {
	var paths []string
	for _, g := range strings.Split(globs, ",") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		m, err := filepath.Glob(g)
		if err != nil {
			return nil, fmt.Errorf("bad -baseline pattern %q: %v", g, err)
		}
		paths = append(paths, m...)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no baseline files match %q", globs)
	}
	sort.Strings(paths)
	out := map[string]baseline{}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var entries []struct {
			Name         string   `json:"name"`
			SecondsPerOp *float64 `json:"seconds_per_op"`
			Seconds      *float64 `json:"seconds"`
			AllocsPerOp  *float64 `json:"allocs_per_op"`
		}
		if err := json.Unmarshal(data, &entries); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		for _, e := range entries {
			if e.Name == "" {
				continue
			}
			b := baseline{Allocs: -1}
			switch {
			case e.SecondsPerOp != nil:
				b.Seconds = *e.SecondsPerOp
			case e.Seconds != nil:
				b.Seconds = *e.Seconds
			default:
				continue // no timing — nothing to compare
			}
			if e.AllocsPerOp != nil {
				b.Allocs = *e.AllocsPerOp
			}
			out[e.Name] = b
		}
	}
	return out, nil
}

// readBenchFiles parses every named file (stdin when none) and merges the
// results; a benchmark appearing twice keeps its last line.
func readBenchFiles(paths []string) (map[string]benchResult, error) {
	out := map[string]benchResult{}
	if len(paths) == 0 {
		res, err := parseBenchOutput(os.Stdin)
		if err != nil {
			return nil, err
		}
		for _, r := range res {
			out[r.Name] = r
		}
		return out, nil
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		res, err := parseBenchOutput(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		for _, r := range res {
			out[r.Name] = r
		}
	}
	return out, nil
}

// parseBenchOutput extracts benchmark lines from `go test -bench` output:
//
//	BenchmarkKernelCutSize/fresh-8   1   1992114 ns/op   296240 B/op   141 allocs/op
//
// Unknown value/unit pairs (custom metrics) are ignored; lines that do not
// start with "Benchmark" (headers, PASS, ok) are skipped.
func parseBenchOutput(r io.Reader) ([]benchResult, error) {
	var out []benchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not a result line (e.g. "BenchmarkX ... --- SKIP")
		}
		res := benchResult{Name: stripProcSuffix(fields[0]), Allocs: -1}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // trailing non-metric text
			}
			switch fields[i+1] {
			case "ns/op":
				res.Seconds = v / 1e9
				seen = true
			case "allocs/op":
				res.Allocs = v
			}
		}
		if seen {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// stripProcSuffix removes the trailing -GOMAXPROCS decoration go test
// appends to benchmark names ("BenchmarkX/case-8" -> "BenchmarkX/case").
// Only an all-digit suffix after the last dash is stripped, so sub-case
// names containing dashes survive.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// compare matches fresh results against baselines and applies the
// tolerances. Time regressions require the ratio to exceed tol.Time; alloc
// regressions require fresh > base*tol.Allocs + tol.AllocSlack, and only
// fire when both sides report alloc counts.
func compare(base map[string]baseline, fresh map[string]benchResult, tol tolerances) report {
	var rep report
	for name, f := range fresh {
		b, ok := base[name]
		if !ok {
			rep.NoBaseline = append(rep.NoBaseline, name)
			continue
		}
		c := comparison{
			Name:        name,
			BaseSeconds: b.Seconds, FreshSeconds: f.Seconds,
			BaseAllocs: b.Allocs, FreshAllocs: f.Allocs,
		}
		if b.Seconds > 0 {
			c.TimeRatio = f.Seconds / b.Seconds
			c.TimeRegressed = c.TimeRatio > tol.Time
		}
		if b.Allocs >= 0 && f.Allocs >= 0 {
			if b.Allocs > 0 {
				c.AllocRatio = f.Allocs / b.Allocs
			}
			c.AllocRegessed = f.Allocs > b.Allocs*tol.Allocs+tol.AllocSlack
		}
		rep.Compared = append(rep.Compared, c)
		if c.TimeRegressed || c.AllocRegessed {
			rep.Regressions = append(rep.Regressions, c)
		}
	}
	for name := range base {
		if _, ok := fresh[name]; !ok {
			rep.NotRun = append(rep.NotRun, name)
		}
	}
	sort.Slice(rep.Compared, func(i, j int) bool { return rep.Compared[i].Name < rep.Compared[j].Name })
	sort.Slice(rep.Regressions, func(i, j int) bool { return rep.Regressions[i].Name < rep.Regressions[j].Name })
	sort.Strings(rep.NoBaseline)
	sort.Strings(rep.NotRun)
	return rep
}

// write renders the verdicts: one line per compared benchmark, a summary of
// the uncompared sets, and a REGRESSION block naming each failure.
func (rep report) write(w io.Writer) {
	for _, c := range rep.Compared {
		status := "ok        "
		if c.TimeRegressed || c.AllocRegessed {
			status = "REGRESSION"
		}
		line := fmt.Sprintf("%s %-55s time %6.2fx (%.4gs -> %.4gs)",
			status, c.Name, c.TimeRatio, c.BaseSeconds, c.FreshSeconds)
		if c.BaseAllocs >= 0 && c.FreshAllocs >= 0 {
			line += fmt.Sprintf("  allocs %.2fx (%.4g -> %.4g)",
				c.AllocRatio, c.BaseAllocs, c.FreshAllocs)
		}
		fmt.Fprintln(w, line)
	}
	if len(rep.NoBaseline) > 0 {
		fmt.Fprintf(w, "note: %d benchmark(s) have no baseline entry: %s\n",
			len(rep.NoBaseline), strings.Join(rep.NoBaseline, ", "))
	}
	if len(rep.NotRun) > 0 {
		fmt.Fprintf(w, "note: %d baseline entr(ies) not exercised by this input\n", len(rep.NotRun))
	}
	if len(rep.Regressions) > 0 {
		fmt.Fprintf(w, "benchdiff: %d regression(s) beyond tolerance\n", len(rep.Regressions))
	} else {
		fmt.Fprintf(w, "benchdiff: %d benchmark(s) within tolerance\n", len(rep.Compared))
	}
}
