module topocmp

go 1.22
