package topocmp

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"topocmp/internal/core"
	"topocmp/internal/graph"
)

// msbfsBenchRow is one line of BENCH_msbfs.json: the scalar-vs-batched
// distance-sweep record per graph family, the machine-readable form of the
// distance-kernel table in EXPERIMENTS.md. Rewritten after every benchmark
// so a partial -bench run still leaves a consistent file.
type msbfsBenchRow struct {
	Name         string  `json:"name"`
	Graph        string  `json:"graph"`
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	Sources      int     `json:"sources"`
	SecondsPerOp float64 `json:"seconds_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
}

var msbfsBench struct {
	sync.Mutex
	rows []msbfsBenchRow
}

// benchMSBFS runs fn b.N times with alloc accounting and records the row.
func benchMSBFS(b *testing.B, g *graph.Graph, gname string, sources int, fn func()) {
	b.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	n := float64(b.N)
	row := msbfsBenchRow{
		Name:         b.Name(),
		Graph:        gname,
		Nodes:        g.NumNodes(),
		Edges:        g.NumEdges(),
		Sources:      sources,
		SecondsPerOp: b.Elapsed().Seconds() / n,
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:   float64(after.TotalAlloc-before.TotalAlloc) / n,
	}
	msbfsBench.Lock()
	defer msbfsBench.Unlock()
	replaced := false
	for i := range msbfsBench.rows {
		if msbfsBench.rows[i].Name == row.Name {
			msbfsBench.rows[i] = row
			replaced = true
			break
		}
	}
	if !replaced {
		msbfsBench.rows = append(msbfsBench.rows, row)
	}
	data, err := json.MarshalIndent(msbfsBench.rows, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_msbfs.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

var msbfsNetsOnce struct {
	sync.Once
	nets []*core.Network
}

// msbfsBenchNets builds the benchmark's graph families once: the measured
// RL and AS graphs (the acceptance workload) plus one generated and two
// canonical families.
func msbfsBenchNets() []*core.Network {
	msbfsNetsOnce.Do(func() {
		opts := core.PaperSetOptions{Seed: 1, Scale: 0.3}
		ms := core.BuildMeasured(opts)
		msbfsNetsOnce.nets = []*core.Network{
			ms.RL, ms.AS,
			core.BuildNetwork("PLRG", opts),
			core.BuildNetwork("Mesh", opts),
			core.BuildNetwork("Tree", opts),
		}
	})
	return msbfsNetsOnce.nets
}

// BenchmarkMSBFS compares one full 64-source distance sweep done the scalar
// way (64 reusable-scratch BFS passes, the pre-kernel hot path of the
// expansion/eccentricity/path-length metrics) against one bit-parallel
// MSBFS batch over the same sources.
func BenchmarkMSBFS(b *testing.B) {
	for _, n := range msbfsBenchNets() {
		g := n.Graph
		r := rand.New(rand.NewSource(7))
		perm := r.Perm(g.NumNodes())
		sources := make([]int32, graph.MSBFSWidth)
		for i := range sources {
			sources[i] = int32(perm[i])
		}
		b.Run("scalar/"+n.Name, func(b *testing.B) {
			s := graph.NewBFSScratch()
			benchMSBFS(b, g, n.Name, len(sources), func() {
				for _, src := range sources {
					s.BFS(g, src)
				}
			})
		})
		b.Run("batched/"+n.Name, func(b *testing.B) {
			ms := graph.NewMSBFSScratch()
			benchMSBFS(b, g, n.Name, len(sources), func() {
				ms.Run(g, sources)
			})
		})
	}
}
