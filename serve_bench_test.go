package topocmp

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"topocmp/internal/core"
	"topocmp/internal/serve"
)

// serveBenchRow is one line of BENCH_serve.json: throughput of the serving
// layer's two perf mechanisms against their naive counterparts. One op is a
// burst of Requests concurrent HTTP requests; SpeedupVsNaive is filled on
// the optimized row once its naive twin has run, so the committed file
// carries the dedup and coalescing wins explicitly. Rewritten after every
// benchmark so a partial -bench run still leaves a consistent file.
type serveBenchRow struct {
	Name           string  `json:"name"`
	Mode           string  `json:"mode"`
	Requests       int     `json:"requests_per_op"`
	SecondsPerOp   float64 `json:"seconds_per_op"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	BytesPerOp     float64 `json:"bytes_per_op"`
	SpeedupVsNaive float64 `json:"speedup_vs_naive,omitempty"`
}

var serveBench struct {
	sync.Mutex
	rows []serveBenchRow
}

// serveBenchPairs maps each optimized sub-benchmark to the naive twin its
// speedup is computed against.
var serveBenchPairs = map[string]string{
	"BenchmarkServe/dedup8":    "BenchmarkServe/naive8",
	"BenchmarkServe/coalesce8": "BenchmarkServe/solo8",
}

// benchServe runs fn (one burst of requests concurrent requests) b.N times
// with alloc accounting and records the row. fn may stop/restart the timer
// around per-iteration server setup; the alloc figures deliberately include
// that setup, identically on both sides of each pair.
func benchServe(b *testing.B, mode string, requests int, fn func()) {
	b.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	n := float64(b.N)
	row := serveBenchRow{
		Name:         b.Name(),
		Mode:         mode,
		Requests:     requests,
		SecondsPerOp: b.Elapsed().Seconds() / n,
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:   float64(after.TotalAlloc-before.TotalAlloc) / n,
	}
	serveBench.Lock()
	defer serveBench.Unlock()
	replaced := false
	for i := range serveBench.rows {
		if serveBench.rows[i].Name == row.Name {
			serveBench.rows[i] = row
			replaced = true
			break
		}
	}
	if !replaced {
		serveBench.rows = append(serveBench.rows, row)
	}
	// Fill the speedup column wherever both sides of a pair are present.
	bySec := map[string]float64{}
	for _, r := range serveBench.rows {
		bySec[r.Name] = r.SecondsPerOp
	}
	for i := range serveBench.rows {
		naive, ok := serveBenchPairs[serveBench.rows[i].Name]
		if !ok {
			continue
		}
		if ns, ok := bySec[naive]; ok && serveBench.rows[i].SecondsPerOp > 0 {
			serveBench.rows[i].SpeedupVsNaive = ns / serveBench.rows[i].SecondsPerOp
		}
	}
	data, err := json.MarshalIndent(serveBench.rows, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// serveBenchSet is the graph under test for every serve benchmark: the
// scaled-down Random network (~1000 nodes), heavy enough that suite and
// sweep compute dominates HTTP plumbing.
func serveBenchSet() core.PaperSetOptions {
	return core.PaperSetOptions{Seed: 3, Scale: 0.2}
}

// serveBenchSuiteBody marshals the identical suite request the dedup
// benchmarks replay; seed varies per iteration so every burst is a cold
// cache key (the dedup under test is in-flight sharing, not memo serving).
func serveBenchSuiteBody(b *testing.B, seed int64) []byte {
	body, err := json.Marshal(serve.SuiteRequest{
		Network: "Random",
		Set:     serveBenchSet(),
		Suite: core.SuiteOptions{
			Sources: 8, MaxBallSize: 600, EigenRank: 8, LinkSources: 32,
			SampleBudget: 8, SkipHierarchy: true, Seed: seed,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func serveBenchMetricBody(b *testing.B, seed int64) []byte {
	body, err := json.Marshal(serve.MetricRequest{
		Network: "Random", Set: serveBenchSet(),
		Metric: "expansion", Sources: 512, Seed: seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// fireBurst posts every body concurrently and drains the responses; the
// burst is one benchmark op.
func fireBurst(b *testing.B, url string, bodies [][]byte) {
	var wg sync.WaitGroup
	for _, body := range bodies {
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
			}
		}(body)
	}
	wg.Wait()
}

// postOnce is the setup-path request helper (warming, equality checks).
func postOnce(b *testing.B, url string, body []byte) []byte {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	return out
}

// BenchmarkServe measures the daemon's two coalescing layers end to end
// over real HTTP, writing BENCH_serve.json:
//
//   - dedup8 vs naive8: 8 concurrent identical suite requests per op.
//     With singleflight the burst executes one suite; with dedup disabled
//     every request computes, serialized by the worker semaphore — the
//     dedup row's speedup_vs_naive is the acceptance figure (>= 5x).
//   - coalesce8 vs solo8: 8 concurrent expansion requests from distinct
//     seeds per op. The coalescing server merges the burst into one shared
//     MSBFS sweep over the union of their centers; the naive side executes
//     each request in isolation (8 separate servers, one engine each — no
//     shared claim cache, no window), which is what per-request execution
//     without a serving layer does: 8 full sweeps over overlapping center
//     sets. Servers are rebuilt per op so every engine starts cold; that
//     setup runs outside the timer.
func BenchmarkServe(b *testing.B) {
	// In-flight dedup: one long-lived server per mode, fresh suite seed per
	// op so every burst recomputes. MaxInFlight must cover the naive burst.
	seed := int64(1)
	for _, m := range []struct {
		name    string
		disable bool
	}{{"dedup8", false}, {"naive8", true}} {
		b.Run(m.name, func(b *testing.B) {
			s := serve.New(serve.Options{MaxInFlight: 16, DisableDedup: m.disable})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			// Warm the network memo so the first op doesn't pay graph
			// construction (both modes, identically).
			postOnce(b, ts.URL+"/v1/suite", serveBenchSuiteBody(b, 1<<40))
			mode := "singleflight"
			if m.disable {
				mode = "naive"
			}
			benchServe(b, mode, 8, func() {
				seed++
				body := serveBenchSuiteBody(b, seed)
				bodies := make([][]byte, 8)
				for i := range bodies {
					bodies[i] = body
				}
				fireBurst(b, ts.URL+"/v1/suite", bodies)
			})
		})
	}

	// Shared-sweep coalescing: the per-server engine caches cumulative
	// profiles for the server's lifetime, so each op gets fresh servers
	// (setup outside the timer) and replays the same 8-seed burst cold.
	metricBodies := make([][]byte, 8)
	for i := range metricBodies {
		metricBodies[i] = serveBenchMetricBody(b, int64(i+1))
	}
	newMetricServer := func(window time.Duration) (*httptest.Server, func()) {
		s := serve.New(serve.Options{MaxInFlight: 16, Window: window})
		ts := httptest.NewServer(s.Handler())
		// Build the network and engine before the timer restarts; a
		// one-source probe leaves the profile cache effectively cold.
		postOnce(b, ts.URL+"/v1/metric", serveBenchMetricBody(b, 1<<40))
		return ts, ts.Close
	}
	// Coalesced responses must be byte-identical to isolated solo ones.
	{
		cts, cdone := newMetricServer(2 * time.Millisecond)
		for i, body := range metricBodies {
			sts, sdone := newMetricServer(-1)
			got := postOnce(b, cts.URL+"/v1/metric", body)
			want := postOnce(b, sts.URL+"/v1/metric", body)
			sdone()
			if !bytes.Equal(got, want) {
				b.Fatalf("coalesced body %d differs from solo body", i)
			}
		}
		cdone()
	}
	b.Run("coalesce8", func(b *testing.B) {
		benchServe(b, "coalesced", 8, func() {
			b.StopTimer()
			ts, done := newMetricServer(2 * time.Millisecond)
			b.StartTimer()
			fireBurst(b, ts.URL+"/v1/metric", metricBodies)
			b.StopTimer()
			done()
			b.StartTimer()
		})
	})
	b.Run("solo8", func(b *testing.B) {
		benchServe(b, "isolated", 8, func() {
			b.StopTimer()
			servers := make([]*httptest.Server, len(metricBodies))
			closers := make([]func(), len(metricBodies))
			for i := range servers {
				servers[i], closers[i] = newMetricServer(-1)
			}
			b.StartTimer()
			var wg sync.WaitGroup
			for i, body := range metricBodies {
				wg.Add(1)
				go func(url string, body []byte) {
					defer wg.Done()
					fireBurst(b, url, [][]byte{body})
				}(servers[i].URL+"/v1/metric", body)
			}
			wg.Wait()
			b.StopTimer()
			for _, c := range closers {
				c()
			}
			b.StartTimer()
		})
	})
}
