// Hierarchy: the paper's §5 story end to end. Computes link values (the
// weighted vertex cover of each link's traversal set) for a PLRG, a Tree
// and a Random graph, classifies their hierarchy as strict/moderate/loose,
// identifies the backbone links, and shows that in the PLRG the backbone is
// exactly the hub-to-hub links — hierarchy arising purely from the
// long-tailed degree distribution.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"topocmp/internal/gen/canonical"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/graph"
	"topocmp/internal/hierarchy"
)

func main() {
	r := rand.New(rand.NewSource(5))
	networks := []struct {
		name string
		g    *graph.Graph
	}{
		{"PLRG", plrg.MustGenerate(r, plrg.Params{N: 1500, Beta: 2.2})},
		{"Tree", canonical.Tree(3, 6)},
		{"Random", canonical.Random(r, 1100, 0.004)},
	}
	for _, n := range networks {
		res := hierarchy.LinkValues(n.g, hierarchy.Options{
			MaxSources: 400, Rand: rand.New(rand.NewSource(9)),
		})
		corr := res.DegreeCorrelation(n.g)
		fmt.Printf("%s (%d nodes): hierarchy %s, link-value/degree correlation %.2f\n",
			n.name, n.g.NumNodes(), hierarchy.Classify(res), corr)

		// List the backbone: the three highest-valued links.
		type lv struct {
			e graph.Edge
			v float64
		}
		ranked := make([]lv, len(res.Edges))
		norm := res.Normalized()
		for i := range ranked {
			ranked[i] = lv{res.Edges[i], norm[i]}
		}
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].v > ranked[j].v })
		for i := 0; i < 3 && i < len(ranked); i++ {
			e := ranked[i].e
			fmt.Printf("  backbone link (%d,%d): value %.3f, endpoint degrees %d and %d\n",
				e.U, e.V, ranked[i].v, n.g.Degree(e.U), n.g.Degree(e.V))
		}
		fmt.Println()
	}
	fmt.Println("In the PLRG the backbone links join the highest-degree hubs — its")
	fmt.Println("hierarchy arises entirely from the long-tailed degree distribution,")
	fmt.Println("while the Tree's hierarchy comes from deliberate link placement")
	fmt.Println("(hence its near-zero correlation).")
}
