// Quickstart: generate a degree-based and a structural topology, run the
// paper's metric suite on both, and print their Low/High signatures.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"topocmp/internal/core"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/gen/transitstub"
)

func main() {
	r := rand.New(rand.NewSource(42))

	// A power-law random graph (the paper's winning degree-based
	// generator) and a Transit-Stub network (the classic structural one).
	networks := []*core.Network{
		{Name: "PLRG", Category: core.Generated,
			Graph: plrg.MustGenerate(r, plrg.Params{N: 3000, Beta: 2.246})},
		{Name: "Transit-Stub", Category: core.Generated,
			Graph: transitstub.MustGenerate(r, transitstub.Paper())},
	}

	// SkipHierarchy keeps the quickstart fast; see examples/hierarchy for
	// the link-value analysis.
	opts := core.SuiteOptions{Seed: 1, SkipHierarchy: true}
	for _, n := range networks {
		fmt.Printf("%s: %d nodes, %d edges, avg degree %.2f\n",
			n.Name, n.Graph.NumNodes(), n.Graph.NumEdges(), n.Graph.AvgDegree())
		res := core.RunSuite(n, opts)
		sig := core.Classify(res)
		fmt.Printf("  expansion=%s resilience=%s distortion=%s -> signature %s\n\n",
			sig.Expansion, sig.Resilience, sig.Distortion, sig)
	}
	fmt.Println("The measured Internet graphs are HHL (high expansion, high")
	fmt.Println("resilience, low distortion): the PLRG matches, Transit-Stub's")
	fmt.Println("strict hierarchy costs it resilience (HLL, like a tree).")
}
