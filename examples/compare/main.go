// Compare: a miniature of the paper's headline experiment. Builds the
// simulated measured Internet graphs plus every generator family, runs the
// three basic metrics, and prints the classification table — showing that
// only the degree-based generators share the measured graphs' HHL
// signature.
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"os"

	"topocmp/internal/core"
)

func main() {
	opts := core.PaperSetOptions{Seed: 7, Scale: 0.12}
	suite := core.SuiteOptions{
		Sources: 12, MaxBallSize: 1200, EigenRank: 10,
		LinkSources: 384, Seed: 7, SkipHierarchy: true,
	}

	fmt.Println("building simulated measured Internet (BGP + traceroute pipeline)...")
	nets := core.BuildPaperNetworks(opts)

	var rows []core.Row
	for _, n := range nets {
		fmt.Printf("  %-8s %6d nodes  %6d edges  avg degree %.2f\n",
			n.Name, n.Graph.NumNodes(), n.Graph.NumEdges(), n.Graph.AvgDegree())
		rows = append(rows, core.BuildRow(core.RunSuite(n, suite)))
	}
	fmt.Println()
	core.WriteTable(os.Stdout, rows)

	matches := 0
	for _, r := range rows {
		if r.MatchesPaper() {
			matches++
		}
	}
	fmt.Printf("\n%d/%d signatures match the paper's table (§4.4)\n", matches, len(rows))
	fmt.Println("Only PLRG matches the measured AS and RL graphs in all three metrics;")
	fmt.Println("TS misses resilience, Tiers misses expansion, Waxman misses distortion.")
}
