// Multicast: connects the paper's expansion metric to protocol
// performance, the motivation it cites from Phillips et al. (SIGCOMM 1999).
// Grows shortest-path multicast trees on a high-expansion PLRG and a
// low-expansion Mesh, fits the Chuang–Sirbu scaling exponent
// L(m) ∝ m^k, and reports multicast's efficiency over unicast.
//
//	go run ./examples/multicast
package main

import (
	"fmt"
	"math/rand"

	"topocmp/internal/gen/canonical"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/graph"
	"topocmp/internal/metrics"
	"topocmp/internal/multicast"
)

func main() {
	r := rand.New(rand.NewSource(17))
	networks := []struct {
		name string
		g    *graph.Graph
	}{
		{"PLRG (high expansion)", plrg.MustGenerate(r, plrg.Params{N: 4000, Beta: 2.2})},
		{"Mesh 50x50 (low expansion)", canonical.Mesh(50, 50)},
	}
	for _, n := range networks {
		curve := multicast.ScalingCurve(n.g, 0, n.g.NumNodes()/4, 8,
			rand.New(rand.NewSource(23)))
		k := multicast.ChuangSirbuExponent(curve)
		apl := metrics.AveragePathLength(n.g, 48)
		eff, err := multicast.Efficiency(curve, apl)
		if err != nil {
			panic(err)
		}
		last := eff.Points[eff.Len()-1]
		fmt.Printf("%s: %d nodes, avg path length %.2f\n", n.name, n.g.NumNodes(), apl)
		fmt.Printf("  Chuang-Sirbu exponent k = %.2f (law predicts ~0.8 on Internet-like graphs)\n", k)
		fmt.Printf("  multicast/unicast link ratio at m=%.0f receivers: %.2f\n\n", last.X, last.Y)
	}
	fmt.Println("The high-expansion graph hews to the ~0.8 exponent; the mesh's")
	fmt.Println("slow neighborhood growth bends the law — the reason the paper's")
	fmt.Println("authors cared about matching the Internet's large-scale structure.")
}
