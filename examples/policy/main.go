// Policy: demonstrates the BGP policy-routing substrate. Synthesizes an
// Internet AS economy with ground-truth provider/customer/peer
// relationships, collects BGP tables at backbone vantage points, runs Gao's
// relationship-inference algorithm on the collected AS paths, and measures
// valley-free path inflation and a policy-induced ball (Appendix E).
//
//	go run ./examples/policy
package main

import (
	"fmt"
	"math/rand"

	"topocmp/internal/bgp"
	"topocmp/internal/internetsim"
	"topocmp/internal/policy"
)

func main() {
	r := rand.New(rand.NewSource(11))
	fmt.Println("synthesizing ground-truth AS-level Internet...")
	as := internetsim.MustGenerateAS(r, internetsim.ASParams{NumAS: 4000})
	fmt.Printf("  %d ASes, %d adjacencies, avg degree %.2f, max degree %d\n",
		as.Graph.NumNodes(), as.Graph.NumEdges(), as.Graph.AvgDegree(), as.Graph.MaxDegree())

	// BGP collection at 20 backbone vantages, like route-views.
	vantages := bgp.PickVantages(as.Graph, 20, r)
	table := bgp.Collect(as.Annotated, vantages)
	measured, _ := table.ExtractGraph()
	fmt.Printf("collected %d AS paths; measured graph: %d ASes, %d of %d adjacencies visible\n",
		len(table.Paths), measured.NumNodes(), measured.NumEdges(), as.Graph.NumEdges())

	// Gao inference against ground truth.
	inferred := policy.InferGao(as.Graph, table.Paths)
	acc := policy.InferenceAccuracy(as.Annotated, inferred)
	fmt.Printf("Gao relationship inference accuracy vs ground truth: %.1f%%\n", 100*acc)

	// Path inflation: valley-free paths vs shortest paths.
	sources := []int32{vantages[0], vantages[5], 100, 2000, 3500}
	infl := as.Annotated.PathInflation(sources)
	fmt.Printf("policy path inflation (mean policy/shortest ratio): %.3f\n", infl)

	// A policy-induced ball around a stub AS (Appendix E).
	center := int32(as.Graph.NumNodes() - 1)
	for h := 1; h <= 4; h++ {
		b := as.Annotated.PolicyBall(center, h)
		plain := as.Graph.Ball(center, h)
		fmt.Printf("ball around stub AS %d, radius %d: policy %d nodes / %d links, plain %d nodes\n",
			center, h, len(b.Nodes), len(b.Edges), len(plain))
	}
}
