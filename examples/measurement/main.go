// Measurement: walks the full measurement pipeline that substitutes for
// the paper's proprietary data — synthesize a ground-truth Internet,
// collect BGP tables, sweep traceroutes (with and without alias-resolution
// noise), and quantify each artifact: vantage coverage (Chang et al.),
// AS size/degree coupling (Tangmunarunkit et al. 2001), and the distortions
// alias failures add to the router-level map.
//
//	go run ./examples/measurement
package main

import (
	"fmt"
	"math/rand"

	"topocmp/internal/bgp"
	"topocmp/internal/internetsim"
	"topocmp/internal/traceroute"
)

func main() {
	r := rand.New(rand.NewSource(41))
	fmt.Println("1. ground truth: synthesizing the Internet...")
	as := internetsim.MustGenerateAS(r, internetsim.ASParams{NumAS: 2500})
	rl := internetsim.MustGenerateRouters(r, as, internetsim.RouterParams{})
	sd := internetsim.SizeDegreeData(as, rl)
	fmt.Printf("   %d ASes (%d adjacencies), %d routers; AS size/degree correlation %.2f\n",
		as.Graph.NumNodes(), as.Graph.NumEdges(), rl.Graph.NumNodes(), sd.Correlation())

	fmt.Println("2. BGP collection at backbone vantages...")
	vantages := bgp.PickVantages(as.Graph, 12, r)
	cov := bgp.CoverageCurve(as.Annotated, vantages)
	fmt.Printf("   adjacency coverage: 1 vantage %.0f%%, %d vantages %.0f%% — backup links stay dark\n",
		100*cov.Points[0].Y, cov.Len(), 100*cov.Points[cov.Len()-1].Y)

	fmt.Println("3. traceroute sweep (clean alias resolution)...")
	clean, _ := traceroute.Sweep(rl.Overlay, rl.Backbone, traceroute.Options{
		Sources: 8, DestFraction: 0.5, Rand: rand.New(rand.NewSource(42)),
	})
	fmt.Printf("   measured RL map: %d of %d routers, avg degree %.2f (SCAN's was 2.53)\n",
		clean.NumNodes(), rl.Graph.NumNodes(), clean.AvgDegree())

	fmt.Println("4. traceroute sweep with 25% alias-resolution failure...")
	noisy, orig := traceroute.Sweep(rl.Overlay, rl.Backbone, traceroute.Options{
		Sources: 8, DestFraction: 0.5, AliasFailure: 0.25,
		Rand: rand.New(rand.NewSource(42)),
	})
	split := map[int32]int{}
	for _, router := range orig {
		split[router]++
	}
	multi := 0
	for _, c := range split {
		if c > 1 {
			multi++
		}
	}
	fmt.Printf("   noisy map: %d pseudo-nodes (%d routers split into interfaces), avg degree %.2f\n",
		noisy.NumNodes(), multi, noisy.AvgDegree())
	fmt.Println("\nEvery 'measured' graph the comparison uses carries exactly these")
	fmt.Println("biases — which is the point: the paper's graphs did too.")
}
